"""Tests for the FCFS open-row memory controller (DDR3 behaviour)."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.architecture import DRAMArchitecture
from repro.dram.commands import CommandKind, Request
from repro.dram.controller import MemoryController
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.dram.timing import DDR3_1600_TIMINGS as T
from repro.errors import ConfigurationError


def make_controller(architecture=DRAMArchitecture.DDR3):
    return MemoryController(ORG, T, architecture)


def read(bank=0, subarray=0, row=0, column=0):
    return Request.read(Coordinate(
        bank=bank, subarray=subarray, row=row, column=column))


def write(bank=0, subarray=0, row=0, column=0):
    return Request.write(Coordinate(
        bank=bank, subarray=subarray, row=row, column=column))


def validate_trace(trace):
    """Structural legality checks on a command trace."""
    open_rows = {}
    for command in sorted(trace.commands, key=lambda c: c.cycle):
        key = command.coordinate.subarray_key
        if command.kind is CommandKind.ACT:
            assert key not in open_rows, "ACT to an already-open subarray"
            open_rows[key] = command.coordinate.row
        elif command.kind is CommandKind.PRE:
            assert key in open_rows, "PRE to a closed subarray"
            del open_rows[key]
        elif command.kind.is_column:
            assert open_rows.get(key) == command.coordinate.row, \
                "column command to a row that is not open"
    cycles = [c.cycle for c in trace.commands]
    assert len(cycles) == len(set(cycles)), "command bus double-booked"


class TestSingleRequest:
    def test_cold_read_is_a_miss(self):
        trace = make_controller().run([read()])
        assert trace.row_misses == 1
        assert trace.row_hits == 0

    def test_cold_read_latency(self):
        trace = make_controller().run([read()])
        # ACT at 0, RD at tRCD, data done tCL + tBL later.
        assert trace.total_cycles == T.tRCD + T.tCL + T.tBL

    def test_cold_write_latency(self):
        trace = make_controller().run([write()])
        assert trace.total_cycles == T.tRCD + T.tCWL + T.tBL

    def test_cold_read_commands(self):
        trace = make_controller().run([read()])
        kinds = [c.kind for c in trace.commands]
        assert kinds == [CommandKind.ACT, CommandKind.RD]

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ConfigurationError):
            make_controller().run([read(bank=99)])


class TestRowHits:
    def test_second_column_is_a_hit(self):
        trace = make_controller().run([read(column=0), read(column=1)])
        assert trace.row_hits == 1
        assert trace.num_activations == 1

    def test_hit_stream_paced_by_tccd(self):
        requests = [read(column=i) for i in range(10)]
        trace = make_controller().run(requests)
        data_cycles = [s.data_cycle for s in trace.serviced]
        gaps = [b - a for a, b in zip(data_cycles, data_cycles[1:])]
        assert all(gap == T.tCCD for gap in gaps)

    def test_same_column_twice_is_still_a_hit(self):
        trace = make_controller().run([read(column=3), read(column=3)])
        assert trace.row_hits == 1

    def test_trace_is_legal(self):
        trace = make_controller().run([read(column=i) for i in range(20)])
        validate_trace(trace)


class TestRowConflicts:
    def test_row_change_is_a_conflict(self):
        trace = make_controller().run([read(row=0), read(row=1)])
        assert trace.row_conflicts == 1
        assert trace.num_precharges == 1
        assert trace.num_activations == 2

    def test_conflict_respects_tras(self):
        trace = make_controller().run([read(row=0), read(row=1)])
        act_cycles = [c.cycle for c in trace.commands
                      if c.kind is CommandKind.ACT]
        pre_cycles = [c.cycle for c in trace.commands
                      if c.kind is CommandKind.PRE]
        assert pre_cycles[0] >= act_cycles[0] + T.tRAS
        assert act_cycles[1] >= pre_cycles[0] + T.tRP

    def test_write_recovery_gates_precharge(self):
        trace = make_controller().run([write(row=0), read(row=1)])
        wr = next(c for c in trace.commands if c.kind is CommandKind.WR)
        pre = next(c for c in trace.commands if c.kind is CommandKind.PRE)
        write_data_end = wr.cycle + T.tCWL + T.tBL
        assert pre.cycle >= write_data_end + T.tWR

    def test_ddr3_subarray_switch_is_a_conflict(self):
        # Commodity DDR3 cannot exploit subarrays.
        trace = make_controller().run(
            [read(subarray=0), read(subarray=1)])
        assert trace.row_conflicts == 1

    def test_trace_is_legal(self):
        requests = [read(row=i % 3, column=i) for i in range(15)]
        trace = make_controller().run(requests)
        validate_trace(trace)


class TestBankParallelism:
    def test_different_banks_keep_rows_open(self):
        trace = make_controller().run(
            [read(bank=0), read(bank=1), read(bank=0, column=1)])
        # Returning to bank 0 is a hit: its row stayed open.
        assert trace.row_hits == 1
        assert trace.num_activations == 2

    def test_acts_respect_trrd(self):
        trace = make_controller().run(
            [read(bank=b) for b in range(4)])
        act_cycles = sorted(c.cycle for c in trace.commands
                            if c.kind is CommandKind.ACT)
        gaps = [b - a for a, b in zip(act_cycles, act_cycles[1:])]
        assert all(gap >= T.tRRD for gap in gaps)

    def test_five_acts_respect_tfaw(self):
        trace = make_controller().run(
            [read(bank=b) for b in range(5)])
        act_cycles = sorted(c.cycle for c in trace.commands
                            if c.kind is CommandKind.ACT)
        assert act_cycles[4] >= act_cycles[0] + T.tFAW

    def test_bank_sweep_faster_than_conflicts(self):
        parallel = make_controller().run(
            [read(bank=i % 8, row=i // 8) for i in range(32)])
        serial = make_controller().run(
            [read(bank=0, row=i) for i in range(32)])
        assert parallel.total_cycles < serial.total_cycles / 2

    def test_trace_is_legal(self):
        trace = make_controller().run(
            [read(bank=i % 8, row=i // 8) for i in range(40)])
        validate_trace(trace)


class TestBusContention:
    def test_data_bursts_never_overlap(self):
        requests = [read(bank=i % 8, column=i // 8) for i in range(24)]
        trace = make_controller().run(requests)
        ends = sorted(s.data_cycle for s in trace.serviced)
        gaps = [b - a for a, b in zip(ends, ends[1:])]
        assert all(gap >= T.tBL for gap in gaps)

    def test_write_to_read_turnaround(self):
        trace = make_controller().run([write(column=0), read(column=1)])
        wr = next(c for c in trace.commands if c.kind is CommandKind.WR)
        rd = next(c for c in trace.commands if c.kind is CommandKind.RD)
        assert rd.cycle >= wr.cycle + T.tCWL + T.tBL + T.tWTR

    def test_read_to_write_turnaround(self):
        trace = make_controller().run([read(column=0), write(column=1)])
        rd = next(c for c in trace.commands if c.kind is CommandKind.RD)
        wr = next(c for c in trace.commands if c.kind is CommandKind.WR)
        assert wr.cycle >= rd.cycle + T.tRTW


class TestServiceOrder:
    def test_fcfs_data_in_request_order(self):
        requests = [read(bank=0, row=0), read(bank=1, row=0),
                    read(bank=0, row=1)]
        trace = make_controller().run(requests)
        data_cycles = [s.data_cycle for s in trace.serviced]
        assert data_cycles == sorted(data_cycles)

    def test_serviced_count_matches_requests(self):
        requests = [read(column=i % 128) for i in range(50)]
        trace = make_controller().run(requests)
        assert len(trace.serviced) == 50

    def test_reset_clears_state(self):
        controller = make_controller()
        controller.run([read()])
        controller.reset()
        trace = controller.run([read()])
        # After reset the same request is a miss again, starting at 0.
        assert trace.row_misses == 1
        assert trace.total_cycles == T.tRCD + T.tCL + T.tBL
