"""Property-based timing-invariant suite for the policy controller.

For random request streams x all architectures x all controller
configurations, every emitted command stream must respect the JEDEC
constraints (tRCD/tRP/tRAS/tWR/tRTP/tCCD/tRRD/tFAW), the data-bus
burst spacing, and the activated-subarray budget.  The verification is
an *independent checker*: the command trace is serialized through the
:mod:`repro.dram.trace_io` interchange format, read back, and replayed
against a from-scratch state machine that shares no code with the
controller (see :mod:`jedec_checker`, shared with the contention
properties).

This file is the single property suite for the bare controller — it
absorbed the earlier ``test_controller_property.py`` duplicate.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from jedec_checker import (
    ORG,
    T,
    TraceChecker,  # noqa: F401  (re-exported for importers of old path)
    architectures,
    controller_configs,
    roundtrip_and_check,
    streams,
)
from repro.dram.commands import RequestKind
from repro.dram.controller import MemoryController
from repro.dram.policies import (
    ControllerConfig,
    RowPolicyKind,
    SchedulerKind,
)


def run_and_check(stream, architecture, config, tmp_path):
    """Run the controller, round-trip the trace, replay the checker."""
    controller = MemoryController(ORG, T, architecture, config=config)
    trace = controller.run(stream)
    roundtrip_and_check(trace.commands, architecture, tmp_path)
    return trace


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------

@given(stream=streams, architecture=architectures,
       config=controller_configs)
@settings(max_examples=200, deadline=None,
          # The tmp_path file is overwritten per example, so reusing
          # the fixture across examples is sound.
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_trace_respects_all_timing_invariants(
        stream, architecture, config, tmp_path):
    trace = run_and_check(stream, architecture, config, tmp_path)
    assert len(trace.serviced) == len(stream)
    assert trace.row_hits + trace.row_misses + trace.row_conflicts \
        == len(stream)


@given(stream=streams, architecture=architectures,
       config=controller_configs)
@settings(max_examples=100, deadline=None)
def test_every_request_gets_exactly_one_column_command(
        stream, architecture, config):
    trace = MemoryController(ORG, T, architecture, config=config
                             ).run(stream)
    reads = sum(1 for r in stream if r.kind is RequestKind.READ)
    writes = len(stream) - reads
    assert trace.num_reads == reads
    assert trace.num_writes == writes


@given(stream=streams, architecture=architectures,
       config=controller_configs)
@settings(max_examples=100, deadline=None)
def test_total_cycles_is_the_last_data_beat(
        stream, architecture, config):
    trace = MemoryController(ORG, T, architecture, config=config
                             ).run(stream)
    ends = [s.data_cycle for s in trace.serviced]
    assert trace.total_cycles == max(ends)


@given(stream=streams, architecture=architectures)
@settings(max_examples=100, deadline=None)
def test_data_bursts_ordered_and_disjoint(stream, architecture):
    """Under the default FCFS controller data completes in order."""
    trace = MemoryController(ORG, T, architecture).run(stream)
    ends = [s.data_cycle for s in trace.serviced]
    assert ends == sorted(ends)
    gaps = [b - a for a, b in zip(ends, ends[1:])]
    assert all(gap >= T.tBL for gap in gaps)


@given(stream=streams, architecture=architectures,
       config=controller_configs)
@settings(max_examples=100, deadline=None)
def test_closed_row_never_conflicts(stream, architecture, config):
    """Under closed-row every access finds its bank precharged —
    conflicts are impossible by construction."""
    if config.row_policy is not RowPolicyKind.CLOSED:
        config = ControllerConfig(
            scheduler=config.scheduler,
            row_policy=RowPolicyKind.CLOSED,
            reorder_window=config.reorder_window,
            timeout_cycles=config.timeout_cycles)
    trace = MemoryController(ORG, T, architecture, config=config
                             ).run(stream)
    assert trace.row_conflicts == 0
    assert trace.row_hits == 0
    assert trace.num_precharges == len(stream)


@given(stream=streams, architecture=architectures,
       window=st.sampled_from([2, 4, 16]))
@settings(max_examples=100, deadline=None)
def test_fr_fcfs_services_every_request_once(
        stream, architecture, window):
    config = ControllerConfig(
        scheduler=SchedulerKind.FR_FCFS, reorder_window=window)
    trace = MemoryController(ORG, T, architecture, config=config
                             ).run(stream)
    serviced = [s.request for s in trace.serviced]
    assert sorted(map(id, serviced)) == sorted(map(id, stream))
