"""Tests for the DRAMSimulator facade."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.dram.commands import RequestKind
from repro.dram.simulator import DRAMSimulator


class TestRun:
    def test_result_bundles_trace_and_energy(self, ddr3_sim):
        result = ddr3_sim.run(ddr3_sim.sequential_reads(0, 0, 0, count=4))
        assert result.total_cycles > 0
        assert result.total_energy_nj > 0

    def test_total_ns_uses_clock(self, ddr3_sim):
        result = ddr3_sim.run(ddr3_sim.sequential_reads(0, 0, 0, count=4))
        assert result.total_ns == pytest.approx(
            result.total_cycles * 1.25)

    def test_per_access_averages(self, ddr3_sim):
        result = ddr3_sim.run(ddr3_sim.sequential_reads(0, 0, 0, count=10))
        assert result.cycles_per_access() == pytest.approx(
            result.total_cycles / 10)
        assert result.energy_per_access_nj() == pytest.approx(
            result.total_energy_nj / 10)

    def test_empty_trace(self, ddr3_sim):
        result = ddr3_sim.run([])
        assert result.total_cycles == 0
        assert result.cycles_per_access() == 0.0
        assert result.energy_per_access_nj() == 0.0

    def test_runs_are_independent(self, ddr3_sim):
        stream = ddr3_sim.sequential_reads(0, 0, 0, count=6)
        first = ddr3_sim.run(stream)
        second = ddr3_sim.run(stream)
        assert first.total_cycles == second.total_cycles
        assert first.total_energy_nj \
            == pytest.approx(second.total_energy_nj)

    def test_background_energy_can_be_disabled(self, table2_org):
        with_bg = DRAMSimulator(table2_org)
        without_bg = DRAMSimulator(
            table2_org, include_background_energy=False)
        stream = with_bg.sequential_reads(0, 0, 0, count=8)
        assert without_bg.run(stream).total_energy_nj \
            < with_bg.run(stream).total_energy_nj


class TestPresetConstructor:
    @pytest.mark.parametrize("arch", list(DRAMArchitecture))
    def test_from_preset(self, arch):
        sim = DRAMSimulator.from_preset(arch)
        assert sim.architecture is arch
        assert sim.organization.chip_megabits == 2048


class TestStreamGenerators:
    def test_sequential_reads_same_row(self, ddr3_sim):
        stream = ddr3_sim.sequential_reads(2, 3, 5, count=10)
        assert all(r.coordinate.bank == 2 for r in stream)
        assert all(r.coordinate.subarray == 3 for r in stream)
        assert all(r.coordinate.row == 5 for r in stream)
        assert all(r.kind is RequestKind.READ for r in stream)

    def test_sequential_reads_wrap_columns(self, ddr3_sim):
        bursts = ddr3_sim.organization.bursts_per_row
        stream = ddr3_sim.sequential_reads(0, 0, 0, count=bursts + 1)
        assert stream[bursts].coordinate.column == 0

    def test_alternating_rows(self, ddr3_sim):
        stream = ddr3_sim.alternating_row_reads(0, 0, rows=[1, 2, 1])
        assert [r.coordinate.row for r in stream] == [1, 2, 1]

    def test_round_robin_subarrays(self, ddr3_sim):
        stream = ddr3_sim.round_robin_subarray_reads(bank=0, count=10)
        subarrays = [r.coordinate.subarray for r in stream]
        assert subarrays == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]

    def test_round_robin_banks(self, ddr3_sim):
        stream = ddr3_sim.round_robin_bank_reads(count=10)
        banks = [r.coordinate.bank for r in stream]
        assert banks == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
