"""Unit tests for the contention configuration, arbiters and crossbar."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import CharacterizationCache, characterize
from repro.dram.commands import Request, RequestKind
from repro.dram.contention import (
    ARBITER_SUMMARIES,
    ASSIGNMENT_SUMMARIES,
    DEFAULT_AGE_LIMIT,
    DEFAULT_CONTENTION_CONFIG,
    DEFAULT_IN_FLIGHT_LIMIT,
    ArbiterKind,
    AssignmentKind,
    ContentionConfig,
    RequestorView,
    arbiter_names,
    assignment_names,
    contention_config,
    get_arbiter,
    per_requestor_stats,
    requestor_tag,
    resolve_contention,
    split_stream,
)
from repro.dram.controller import MemoryController
from repro.dram.crossbar import Crossbar, RequestorBankMachine
from repro.dram.device import TINY_DEVICE
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.simulator import DRAMSimulator
from repro.dram.timing import DDR3_1600_TIMINGS as T
from repro.errors import ConfigurationError

DDR3 = DRAMArchitecture.DDR3


def _stream(n=12):
    sim = DRAMSimulator(ORG, T, DDR3)
    return sim.alternating_row_reads(
        bank=0, subarray=0, rows=range(3), per_row=(n + 2) // 3)[:n]


class TestContentionConfig:
    def test_default_is_single_requestor(self):
        assert DEFAULT_CONTENTION_CONFIG.requestors == 1
        assert DEFAULT_CONTENTION_CONFIG.is_default
        assert DEFAULT_CONTENTION_CONFIG.label == "1req"

    def test_requestors_must_be_positive(self):
        for bad in (0, -1, 1.5, "2"):
            with pytest.raises(ConfigurationError):
                ContentionConfig(requestors=bad)

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            ContentionConfig(requestors=2, in_flight_limit=0)
        with pytest.raises(ConfigurationError):
            ContentionConfig(requestors=2, age_limit=0)
        with pytest.raises(ConfigurationError):
            ContentionConfig(requestors=2, arbiter="round-robin")

    def test_n1_canonicalizes_every_knob(self):
        """All single-requestor configs are one cache key."""
        config = ContentionConfig(
            requestors=1, arbiter=ArbiterKind.AGE_BASED,
            assignment=AssignmentKind.BLOCK, in_flight_limit=3,
            age_limit=5)
        assert config == DEFAULT_CONTENTION_CONFIG
        assert hash(config) == hash(DEFAULT_CONTENTION_CONFIG)

    def test_inactive_age_limit_canonicalized(self):
        a = contention_config(requestors=2, arbiter="round-robin",
                              age_limit=3)
        b = contention_config(requestors=2, arbiter="round-robin")
        assert a == b
        assert a.age_limit == DEFAULT_AGE_LIMIT
        # ... but the knob is live under age-based.
        c = contention_config(requestors=2, arbiter="age-based",
                              age_limit=3)
        assert c.age_limit == 3

    def test_label_and_describe(self):
        config = contention_config(requestors=4, arbiter="age-based")
        assert config.label == "4req/age-based"
        assert "age-limit" in config.describe()
        assert "uncontended" in DEFAULT_CONTENTION_CONFIG.describe()
        assert not config.is_default

    def test_unknown_arbiter_name_lists_choices(self):
        with pytest.raises(ConfigurationError) as exc:
            contention_config(requestors=2, arbiter="lottery")
        message = str(exc.value)
        for name in arbiter_names():
            assert name in message

    def test_unknown_assignment_name_lists_choices(self):
        with pytest.raises(ConfigurationError) as exc:
            contention_config(requestors=2, assignment="striped")
        for name in assignment_names():
            assert name in str(exc.value)

    def test_resolve_contention(self):
        assert resolve_contention(None) is DEFAULT_CONTENTION_CONFIG
        config = contention_config(requestors=2)
        assert resolve_contention(config) is config
        with pytest.raises(ConfigurationError):
            resolve_contention("2req")

    def test_registry_listings_cover_every_kind(self):
        assert arbiter_names() == (
            "round-robin", "fixed-priority", "age-based")
        assert assignment_names() == ("interleave", "block")
        assert set(ARBITER_SUMMARIES) == set(ArbiterKind)
        assert set(ASSIGNMENT_SUMMARIES) == set(AssignmentKind)
        for kind in ArbiterKind:
            assert get_arbiter(kind).kind is kind
            assert get_arbiter(kind.value).kind is kind


def _views(*specs):
    """RequestorViews from (index, waited, would_hit) triples."""
    return [RequestorView(index=i, waited=w, would_hit=h, in_flight=0)
            for i, w, h in specs]


class TestArbiters:
    CONFIG2 = contention_config(requestors=2)
    CONFIG4 = contention_config(requestors=4)

    def test_round_robin_rotates(self):
        arbiter = get_arbiter("round-robin")
        views = _views((0, 0, False), (1, 0, False), (3, 0, False))
        assert arbiter.select(views, -1, self.CONFIG4) == 0
        assert arbiter.select(views, 0, self.CONFIG4) == 1
        assert arbiter.select(views, 1, self.CONFIG4) == 3
        assert arbiter.select(views, 3, self.CONFIG4) == 0
        # Skips non-backlogged index 2.
        assert arbiter.select(views, 2, self.CONFIG4) == 3

    def test_fixed_priority_picks_lowest_index(self):
        arbiter = get_arbiter("fixed-priority")
        views = _views((3, 9, True), (1, 0, False))
        assert arbiter.select(views, -1, self.CONFIG4) == 1

    def test_age_based_prefers_oldest_hit(self):
        config = contention_config(
            requestors=4, arbiter="age-based", age_limit=10)
        arbiter = get_arbiter("age-based")
        views = _views((0, 5, False), (1, 2, True), (2, 4, True))
        assert arbiter.select(views, -1, config) == 2

    def test_age_based_escape_overrides_hits(self):
        config = contention_config(
            requestors=4, arbiter="age-based", age_limit=5)
        arbiter = get_arbiter("age-based")
        views = _views((0, 5, False), (1, 2, True), (2, 4, True))
        assert arbiter.select(views, -1, config) == 0

    def test_age_based_without_hits_picks_oldest(self):
        config = contention_config(
            requestors=4, arbiter="age-based", age_limit=100)
        arbiter = get_arbiter("age-based")
        views = _views((0, 1, False), (3, 4, False), (2, 4, False))
        # Ties break toward the lower index.
        assert arbiter.select(views, -1, config) == 2


class TestSplitStream:
    def test_interleave_ownership_and_tags(self):
        stream = _stream(7)
        config = contention_config(requestors=3)
        streams = split_stream(stream, config)
        assert [len(s) for s in streams] == [3, 2, 2]
        for index, per_requestor in enumerate(streams):
            assert all(r.tag == requestor_tag(index)
                       for r in per_requestor)
        # Order and payload are preserved modulo the tag.
        merged = [r.coordinate for i in range(7)
                  for r in [streams[i % 3][i // 3]]]
        assert merged == [r.coordinate for r in stream]

    def test_block_ownership(self):
        stream = _stream(7)
        config = contention_config(requestors=3, assignment="block")
        streams = split_stream(stream, config)
        assert [len(s) for s in streams] == [3, 2, 2]
        flat = [r.coordinate for s in streams for r in s]
        assert flat == [r.coordinate for r in stream]

    def test_existing_tags_are_kept(self):
        stream = [Request(kind=RequestKind.READ,
                          coordinate=r.coordinate, tag="cpu")
                  for r in _stream(4)]
        streams = split_stream(stream, contention_config(requestors=2))
        assert all(r.tag == "cpu" for s in streams for r in s)

    def test_default_config_is_identity(self):
        stream = _stream(5)
        (only,) = split_stream(stream)
        assert [r.coordinate for r in only] \
            == [r.coordinate for r in stream]
        assert all(r.tag == "r0" for r in only)


class TestPerRequestorStats:
    def test_partition_and_shares(self):
        config = contention_config(requestors=2)
        sim = DRAMSimulator(ORG, T, DDR3, contention=config)
        result = sim.run(_stream(12))
        stats = per_requestor_stats(result.trace.serviced)
        assert [s.requestor for s in stats] == ["r0", "r1"]
        assert sum(s.serviced for s in stats) == 12
        assert sum(s.bus_share for s in stats) == pytest.approx(1.0)
        trace = result.trace
        assert sum(s.row_hits for s in stats) == trace.row_hits
        assert sum(s.row_misses for s in stats) == trace.row_misses
        assert sum(s.row_conflicts for s in stats) \
            == trace.row_conflicts
        assert all(s.mean_service_cycles > 0 for s in stats)

    def test_untagged_records_attributed_to_r0(self):
        trace = MemoryController(ORG, T, DDR3).run(_stream(4))
        (stats,) = per_requestor_stats(trace.serviced)
        assert stats.requestor == "r0"
        assert stats.serviced == 4
        assert stats.bus_share == 1.0

    def test_empty_serviced(self):
        assert per_requestor_stats([]) == ()


class TestBankMachine:
    def test_tracks_own_rows_only(self):
        machine = RequestorBankMachine()
        first, second = _stream(2)[0], _stream(6)[4]
        assert not machine.would_hit(first)
        machine.observe(first)
        assert machine.would_hit(first)
        assert not machine.would_hit(second)
        machine.observe(second)
        assert machine.would_hit(second)


class TestCrossbar:
    def test_stream_count_must_match_config(self):
        controller = MemoryController(ORG, T, DDR3)
        crossbar = Crossbar(
            controller, contention_config(requestors=2))
        with pytest.raises(ConfigurationError):
            crossbar.run([_stream(4)])

    def test_grant_log_covers_every_request(self):
        config = contention_config(requestors=2)
        crossbar = Crossbar(MemoryController(ORG, T, DDR3), config)
        trace = crossbar.run_merged(_stream(10))
        assert len(trace.serviced) == 10
        assert len(crossbar.grant_log) == 10
        assert {g.requestor for g in crossbar.grant_log} == {0, 1}

    def test_untagged_streams_are_tagged_per_requestor(self):
        config = contention_config(requestors=2)
        crossbar = Crossbar(MemoryController(ORG, T, DDR3), config)
        trace = crossbar.run([_stream(4), _stream(4)])
        assert {s.request.tag for s in trace.serviced} == {"r0", "r1"}

    def test_n1_crossbar_equals_bare_controller(self):
        stream = _stream(12)
        bare = MemoryController(ORG, T, DDR3).run(stream)
        contended = Crossbar(MemoryController(ORG, T, DDR3)
                             ).run_merged(stream)
        assert contended.commands == bare.commands

    def test_contended_run_services_every_request(self):
        for arbiter in arbiter_names():
            config = contention_config(requestors=3, arbiter=arbiter)
            crossbar = Crossbar(MemoryController(ORG, T, DDR3), config)
            trace = crossbar.run_merged(_stream(11))
            assert len(trace.serviced) == 11


class TestContentionCacheKey:
    def test_in_memory_cache_distinguishes_contention(self):
        cache = CharacterizationCache()
        base = cache.get(DDR3, device=TINY_DEVICE)
        contended = cache.get(
            DDR3, device=TINY_DEVICE,
            contention=contention_config(requestors=2))
        assert base is not contended
        assert cache.stats.misses == 2
        # Same channel again: a hit, not a re-simulation.
        again = cache.get(
            DDR3, device=TINY_DEVICE,
            contention=contention_config(requestors=2))
        assert again is contended
        assert cache.stats.hits == 1

    def test_characterize_records_contention(self):
        config = contention_config(requestors=2, arbiter="age-based")
        result = characterize(
            DDR3, device=TINY_DEVICE, contention=config)
        assert result.contention == config
        assert result.requestor_stats
        assert [s.requestor for s in result.requestor_stats] \
            == ["r0", "r1"]

    def test_uncontended_result_has_no_requestor_stats(self):
        result = characterize(DDR3, device=TINY_DEVICE)
        assert result.contention is DEFAULT_CONTENTION_CONFIG
        assert result.requestor_stats == ()
        assert DEFAULT_IN_FLIGHT_LIMIT >= 1
