"""Golden command-trace corpus and request-trace round-trip.

The files under ``tests/dram/goldens/`` pin the exact command traces
the default controller (FCFS/open-row, the paper's Table II) emits for
the four marginal characterization streams on ``ddr3-1600-2gb-x8``.
Any change to the scheduler, the bank state machine, or the timing
arithmetic that moves a single command by a single cycle fails these
byte comparisons — the policy refactor is held to "default output
byte-identical" at command granularity, not just at the aggregated
Fig.-1 numbers.

Regenerate (only for an *intentional* model change) with::

    PYTHONPATH=src python tests/dram/test_trace_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

from repro.dram.characterize import _STREAMS, AccessCondition
from repro.dram.commands import RequestKind
from repro.dram.controller import MemoryController
from repro.dram.device import get_device
from repro.dram.trace_io import (
    read_command_trace,
    read_request_trace,
    write_command_trace,
    write_request_trace,
)
from repro.mapping.catalog import TABLE1_MAPPINGS

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Requests per pinned stream: three full sweeps of the widest
#: (8-subarray / 8-bank) generators, enough to exercise steady state.
STREAM_LENGTH = 24

#: The four generator-backed conditions (the miss condition has no
#: stream generator; it is a single isolated request).
PINNED_CONDITIONS = (
    AccessCondition.ROW_HIT,
    AccessCondition.ROW_CONFLICT,
    AccessCondition.SUBARRAY_PARALLEL,
    AccessCondition.BANK_PARALLEL,
)


def golden_path(condition: AccessCondition) -> Path:
    return GOLDEN_DIR / f"{condition.value}.trace"


def generate_trace(condition: AccessCondition, path: Path) -> None:
    """Run the condition's stream on the default device and pin it."""
    device = get_device("ddr3-1600-2gb-x8")
    stream = _STREAMS[condition](
        device.organization, RequestKind.READ, STREAM_LENGTH)
    controller = MemoryController(device.organization, device.timings)
    trace = controller.run(stream)
    write_command_trace(path, trace.commands)


class TestGoldenCommandTraces:
    def test_goldens_exist(self):
        for condition in PINNED_CONDITIONS:
            assert golden_path(condition).is_file(), (
                f"missing golden {golden_path(condition)}; regenerate "
                f"with python {__file__} --regenerate")

    def test_default_controller_matches_goldens_byte_for_byte(
            self, tmp_path):
        for condition in PINNED_CONDITIONS:
            fresh = tmp_path / f"{condition.value}.trace"
            generate_trace(condition, fresh)
            assert fresh.read_bytes() == golden_path(condition
                                                     ).read_bytes(), (
                f"{condition.value} command trace drifted from the "
                f"pinned pre-refactor schedule")

    def test_goldens_parse_and_round_trip(self, tmp_path):
        for condition in PINNED_CONDITIONS:
            commands = read_command_trace(golden_path(condition))
            assert len(commands) >= STREAM_LENGTH
            rewritten = tmp_path / "rewritten.trace"
            write_command_trace(rewritten, commands)
            assert rewritten.read_bytes() == \
                golden_path(condition).read_bytes()


class TestRequestTraceRoundTrip:
    def test_read_write_read_byte_identical(self, tmp_path):
        """Lossless request round-trip under every Table-I mapping."""
        device = get_device("ddr3-1600-2gb-x8")
        stream = _STREAMS[AccessCondition.SUBARRAY_PARALLEL](
            device.organization, RequestKind.READ, STREAM_LENGTH)
        stream += _STREAMS[AccessCondition.BANK_PARALLEL](
            device.organization, RequestKind.WRITE, STREAM_LENGTH)
        for policy in TABLE1_MAPPINGS:
            first = tmp_path / "first.trace"
            second = tmp_path / "second.trace"
            write_request_trace(
                first, stream, policy, device.organization)
            recovered = read_request_trace(
                first, policy, device.organization)
            assert recovered == stream
            write_request_trace(
                second, recovered, policy, device.organization)
            assert second.read_bytes() == first.read_bytes()


if __name__ == "__main__":  # pragma: no cover - maintenance entry
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for pinned in PINNED_CONDITIONS:
            generate_trace(pinned, golden_path(pinned))
            print(f"wrote {golden_path(pinned)}")
    else:
        print(__doc__)
