"""Golden command-trace corpus and request-trace round-trip.

The files under ``tests/dram/goldens/`` pin the exact command traces
the default controller (FCFS/open-row, the paper's Table II) emits for
the four marginal characterization streams on ``ddr3-1600-2gb-x8``.
Any change to the scheduler, the bank state machine, or the timing
arithmetic that moves a single command by a single cycle fails these
byte comparisons — the policy refactor is held to "default output
byte-identical" at command granularity, not just at the aggregated
Fig.-1 numbers.

Regenerate (only for an *intentional* model change) with::

    PYTHONPATH=src python tests/dram/test_trace_golden.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

from repro.dram.characterize import _STREAMS, AccessCondition
from repro.dram.commands import RequestKind
from repro.dram.contention import contention_config
from repro.dram.controller import MemoryController
from repro.dram.crossbar import Crossbar
from repro.dram.device import get_device
from repro.dram.trace_io import (
    read_command_trace,
    read_request_trace,
    write_command_trace,
    write_request_trace,
)
from repro.mapping.catalog import TABLE1_MAPPINGS

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Requests per pinned stream: three full sweeps of the widest
#: (8-subarray / 8-bank) generators, enough to exercise steady state.
STREAM_LENGTH = 24

#: The four generator-backed conditions (the miss condition has no
#: stream generator; it is a single isolated request).
PINNED_CONDITIONS = (
    AccessCondition.ROW_HIT,
    AccessCondition.ROW_CONFLICT,
    AccessCondition.SUBARRAY_PARALLEL,
    AccessCondition.BANK_PARALLEL,
)


def golden_path(condition: AccessCondition) -> Path:
    return GOLDEN_DIR / f"{condition.value}.trace"


def generate_trace(condition: AccessCondition, path: Path) -> None:
    """Run the condition's stream on the default device and pin it."""
    device = get_device("ddr3-1600-2gb-x8")
    stream = _STREAMS[condition](
        device.organization, RequestKind.READ, STREAM_LENGTH)
    controller = MemoryController(device.organization, device.timings)
    trace = controller.run(stream)
    write_command_trace(path, trace.commands)


#: The pinned two-requestor schedule: the row-conflict stream split
#: round-robin across two requestors on the default controller.
CONTENDED_GOLDEN = GOLDEN_DIR / "n2-round-robin.trace"


def generate_contended_trace(path: Path) -> None:
    """Pin the N=2 round-robin crossbar schedule on the default device."""
    device = get_device("ddr3-1600-2gb-x8")
    stream = _STREAMS[AccessCondition.ROW_CONFLICT](
        device.organization, RequestKind.READ, STREAM_LENGTH)
    crossbar = Crossbar(
        MemoryController(device.organization, device.timings),
        contention_config(requestors=2, arbiter="round-robin"))
    trace = crossbar.run_merged(stream)
    write_command_trace(path, trace.commands)


class TestGoldenCommandTraces:
    def test_goldens_exist(self):
        for condition in PINNED_CONDITIONS:
            assert golden_path(condition).is_file(), (
                f"missing golden {golden_path(condition)}; regenerate "
                f"with python {__file__} --regenerate")

    def test_default_controller_matches_goldens_byte_for_byte(
            self, tmp_path):
        for condition in PINNED_CONDITIONS:
            fresh = tmp_path / f"{condition.value}.trace"
            generate_trace(condition, fresh)
            assert fresh.read_bytes() == golden_path(condition
                                                     ).read_bytes(), (
                f"{condition.value} command trace drifted from the "
                f"pinned pre-refactor schedule")

    def test_goldens_parse_and_round_trip(self, tmp_path):
        for condition in PINNED_CONDITIONS:
            commands = read_command_trace(golden_path(condition))
            assert len(commands) >= STREAM_LENGTH
            rewritten = tmp_path / "rewritten.trace"
            write_command_trace(rewritten, commands)
            assert rewritten.read_bytes() == \
                golden_path(condition).read_bytes()


class TestCrossbarGoldens:
    def test_n1_crossbar_matches_every_golden_byte_for_byte(
            self, tmp_path):
        """The default-contention crossbar must reproduce the bare
        controller's pinned schedules exactly — the N=1 front end is
        the identity, held to command granularity."""
        device = get_device("ddr3-1600-2gb-x8")
        for condition in PINNED_CONDITIONS:
            stream = _STREAMS[condition](
                device.organization, RequestKind.READ, STREAM_LENGTH)
            crossbar = Crossbar(MemoryController(
                device.organization, device.timings))
            trace = crossbar.run_merged(stream)
            fresh = tmp_path / f"{condition.value}.trace"
            write_command_trace(fresh, trace.commands)
            assert fresh.read_bytes() == golden_path(condition
                                                     ).read_bytes(), (
                f"N=1 crossbar drifted from the pinned bare-controller "
                f"{condition.value} schedule")

    def test_n2_round_robin_matches_golden_byte_for_byte(
            self, tmp_path):
        assert CONTENDED_GOLDEN.is_file(), (
            f"missing golden {CONTENDED_GOLDEN}; regenerate with "
            f"python {__file__} --regenerate")
        fresh = tmp_path / "n2-round-robin.trace"
        generate_contended_trace(fresh)
        assert fresh.read_bytes() == CONTENDED_GOLDEN.read_bytes(), (
            "N=2 round-robin command trace drifted from the pinned "
            "crossbar schedule")


class TestRequestTraceRoundTrip:
    def test_read_write_read_byte_identical(self, tmp_path):
        """Lossless request round-trip under every Table-I mapping."""
        device = get_device("ddr3-1600-2gb-x8")
        stream = _STREAMS[AccessCondition.SUBARRAY_PARALLEL](
            device.organization, RequestKind.READ, STREAM_LENGTH)
        stream += _STREAMS[AccessCondition.BANK_PARALLEL](
            device.organization, RequestKind.WRITE, STREAM_LENGTH)
        for policy in TABLE1_MAPPINGS:
            first = tmp_path / "first.trace"
            second = tmp_path / "second.trace"
            write_request_trace(
                first, stream, policy, device.organization)
            recovered = read_request_trace(
                first, policy, device.organization)
            assert recovered == stream
            write_request_trace(
                second, recovered, policy, device.organization)
            assert second.read_bytes() == first.read_bytes()


if __name__ == "__main__":  # pragma: no cover - maintenance entry
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for pinned in PINNED_CONDITIONS:
            generate_trace(pinned, golden_path(pinned))
            print(f"wrote {golden_path(pinned)}")
        generate_contended_trace(CONTENDED_GOLDEN)
        print(f"wrote {CONTENDED_GOLDEN}")
    else:
        print(__doc__)
