"""Tests for request/command trace file I/O."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.commands import (
    Command,
    CommandKind,
    Request,
    RequestKind,
)
from repro.dram.presets import TINY_ORGANIZATION as ORG
from repro.dram.trace_io import (
    address_to_request,
    read_command_trace,
    read_request_trace,
    request_to_address,
    write_command_trace,
    write_request_trace,
)
from repro.errors import ConfigurationError
from repro.mapping.catalog import DRMAP, MAPPING_2


class TestAddressCodec:
    def test_origin_is_address_zero(self):
        request = Request.read(Coordinate())
        assert request_to_address(request, DRMAP, ORG) == 0

    def test_round_trip_through_address(self):
        for index in (0, 1, 7, 8, 100, 511):
            coord = DRMAP.coordinate_of(index, ORG)
            request = Request.read(coord)
            address = request_to_address(request, DRMAP, ORG)
            assert address == index * ORG.bytes_per_burst
            back = address_to_request(
                address, RequestKind.READ, DRMAP, ORG)
            assert back.coordinate == coord

    def test_policy_changes_address(self):
        coord = Coordinate(bank=1, subarray=1, row=0, column=0)
        request = Request.read(coord)
        assert request_to_address(request, DRMAP, ORG) \
            != request_to_address(request, MAPPING_2, ORG)

    def test_unaligned_address_rejected(self):
        with pytest.raises(ConfigurationError):
            address_to_request(3, RequestKind.READ, DRMAP, ORG)

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            address_to_request(-8, RequestKind.READ, DRMAP, ORG)


class TestRequestTraceFiles:
    def test_round_trip(self, tmp_path):
        requests = [
            Request.read(DRMAP.coordinate_of(i, ORG)) for i in range(20)
        ] + [
            Request.write(DRMAP.coordinate_of(i, ORG))
            for i in range(20, 30)
        ]
        path = tmp_path / "trace.txt"
        count = write_request_trace(path, requests, DRMAP, ORG)
        assert count == 30
        loaded = read_request_trace(path, DRMAP, ORG)
        assert [r.kind for r in loaded] == [r.kind for r in requests]
        assert [r.coordinate for r in loaded] \
            == [r.coordinate for r in requests]

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0x0 R\n0x8 W\n")
        loaded = read_request_trace(path, DRMAP, ORG)
        assert len(loaded) == 2
        assert loaded[1].kind is RequestKind.WRITE

    def test_bad_direction_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0x0 X\n")
        with pytest.raises(ConfigurationError):
            read_request_trace(path, DRMAP, ORG)

    def test_bad_address_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("zzz R\n")
        with pytest.raises(ConfigurationError):
            read_request_trace(path, DRMAP, ORG)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0x0 R extra\n")
        with pytest.raises(ConfigurationError):
            read_request_trace(path, DRMAP, ORG)

    def test_replayed_trace_simulates_identically(self, tmp_path):
        """A trace written to disk and reloaded produces the same
        simulation result."""
        from repro.dram.simulator import DRAMSimulator
        simulator = DRAMSimulator(ORG)
        original = simulator.sequential_reads(0, 0, 0, count=32)
        path = tmp_path / "trace.txt"
        write_request_trace(path, original, DRMAP, ORG)
        replayed = read_request_trace(path, DRMAP, ORG)
        assert simulator.run(original).total_cycles \
            == simulator.run(replayed).total_cycles


class TestCommandTraceFiles:
    def test_round_trip(self, tmp_path):
        commands = [
            Command(CommandKind.ACT, 0, Coordinate(bank=1, row=2)),
            Command(CommandKind.RD, 11, Coordinate(bank=1, row=2,
                                                   column=3)),
            Command(CommandKind.PRE, 50, Coordinate(bank=1)),
            Command(CommandKind.REF, 100, Coordinate()),
        ]
        path = tmp_path / "commands.txt"
        assert write_command_trace(path, commands) == 4
        loaded = read_command_trace(path)
        assert [(c.kind, c.cycle, c.coordinate) for c in loaded] \
            == [(c.kind, c.cycle, c.coordinate) for c in commands]

    def test_malformed_command_line_rejected(self, tmp_path):
        path = tmp_path / "commands.txt"
        path.write_text("0 ACT 0 0 0\n")
        with pytest.raises(ConfigurationError):
            read_command_trace(path)

    def test_simulated_trace_exports(self, tmp_path):
        """End to end: simulate, export commands, reload, account
        energy on the reloaded trace."""
        from repro.dram.commands import CommandTrace
        from repro.dram.energy import EnergyAccountant
        from repro.dram.power import EnergyModel
        from repro.dram.simulator import DRAMSimulator
        from repro.dram.timing import DDR3_1600_TIMINGS

        simulator = DRAMSimulator(ORG)
        result = simulator.run(simulator.sequential_reads(0, 0, 0, 16))
        path = tmp_path / "commands.txt"
        write_command_trace(path, result.trace.commands)
        loaded = read_command_trace(path)
        rebuilt = CommandTrace(
            commands=loaded, serviced=[],
            total_cycles=result.trace.total_cycles)
        model = EnergyModel(ORG, DDR3_1600_TIMINGS)
        energy = EnergyAccountant(model).account(rebuilt)
        assert energy.total_nj \
            == pytest.approx(result.total_energy_nj)
