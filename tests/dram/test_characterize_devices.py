"""Characterization across device profiles: cache keys, stats, goldens.

The registry refactor must not move a single bit of the paper's
numbers: the DDR3 golden values below were captured from the
pre-refactor code (module-level DDR3 constants) and are compared
exactly, not approximately.
"""

import pytest

from repro.dram.architecture import ALL_ARCHITECTURES, DRAMArchitecture
from repro.dram.characterize import (
    AccessCondition,
    CharacterizationCache,
    characterize,
    characterize_device,
)
from repro.dram.device import (
    DDR4_2400_DEVICE,
    HBM2_DEVICE,
    LPDDR4_3200_DEVICE,
    TINY_DEVICE,
    default_device,
    get_device,
)
from repro.errors import ConfigurationError

#: Pre-refactor DDR3-1600 2 Gb x8 per-condition costs, captured from
#: the seed implementation: (cycles, read nJ, write nJ) per condition.
DDR3_GOLDEN = {
    AccessCondition.ROW_HIT: (4.0, 1.1775000000000042, 0.8849999999999957),
    AccessCondition.ROW_MISS: (26.0, 3.6375, 3.13125),
    AccessCondition.ROW_CONFLICT: (
        39.0, 5.038125000000008, 5.244374999999999),
    AccessCondition.SUBARRAY_PARALLEL: (
        39.0, 5.038125000000008, 5.244374999999999),
    AccessCondition.BANK_PARALLEL: (
        6.0, 2.686875000000008, 2.3943749999999993),
}

#: Pre-refactor SALP-MASA subarray-parallel cost (the headline Fig.-1
#: delta), captured from the seed implementation.
MASA_SUBARRAY_GOLDEN = (6.0, 2.874300000000006, 2.599612499999998)


class TestGoldenValues:
    def test_ddr3_byte_identical_to_pre_refactor(self):
        result = characterize(DRAMArchitecture.DDR3)
        for condition, (cycles, read_nj, write_nj) in DDR3_GOLDEN.items():
            cost = result.cost(condition)
            assert cost.cycles == cycles
            assert cost.read_energy_nj == read_nj
            assert cost.write_energy_nj == write_nj

    def test_ddr3_via_explicit_device_byte_identical(self):
        implicit = characterize(DRAMArchitecture.DDR3)
        explicit = characterize(
            DRAMArchitecture.DDR3, device=get_device("ddr3-1600-2gb-x8"))
        assert implicit.costs == explicit.costs

    def test_masa_subarray_golden(self):
        result = characterize(DRAMArchitecture.SALP_MASA)
        cost = result.cost(AccessCondition.SUBARRAY_PARALLEL)
        assert (cost.cycles, cost.read_energy_nj, cost.write_energy_nj) \
            == MASA_SUBARRAY_GOLDEN

    def test_result_records_device_name(self):
        assert characterize(DRAMArchitecture.DDR3).device_name \
            == "ddr3-1600-2gb-x8"
        assert characterize(
            DRAMArchitecture.DDR3, device=HBM2_DEVICE).device_name \
            == "hbm2"

    def test_prebuilt_simulator_labelled_custom(self):
        """A pre-built simulator has unknown provenance: it must not be
        mislabelled as the default device."""
        from repro.dram.simulator import DRAMSimulator

        simulator = DRAMSimulator(
            TINY_DEVICE.organization.with_subarrays(2))
        result = characterize(DRAMArchitecture.DDR3, simulator=simulator)
        assert result.device_name == "custom"


class TestMultiDeviceCache:
    def test_keys_do_not_collide_across_devices(self):
        cache = CharacterizationCache()
        ddr3 = cache.get(DRAMArchitecture.DDR3)
        ddr4 = cache.get(DRAMArchitecture.DDR3, device=DDR4_2400_DEVICE)
        lpddr4 = cache.get(
            DRAMArchitecture.DDR3, device=LPDDR4_3200_DEVICE)
        assert ddr3 is not ddr4
        assert ddr4 is not lpddr4
        # Three distinct entries, one per (profile, architecture).
        assert len(cache) == 3
        # Faster clocks mean different tck; energies differ too.
        assert ddr3.tck_ns != ddr4.tck_ns != lpddr4.tck_ns

    def test_same_device_hits(self):
        cache = CharacterizationCache()
        first = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        second = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        assert first is second
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_architecture_is_part_of_the_key(self):
        cache = CharacterizationCache()
        ddr3 = cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        masa = cache.get(DRAMArchitecture.SALP_MASA, device=TINY_DEVICE)
        assert ddr3 is not masa
        assert len(cache) == 2

    def test_per_device_stats(self):
        cache = CharacterizationCache()
        cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        cache.get(DRAMArchitecture.DDR3, device=DDR4_2400_DEVICE)
        tiny_stats = cache.device_stats("tiny")
        assert (tiny_stats.hits, tiny_stats.misses) == (1, 1)
        ddr4_stats = cache.device_stats("ddr4-2400")
        assert (ddr4_stats.hits, ddr4_stats.misses) == (0, 1)
        # Devices never asked for report empty counters.
        hbm2_stats = cache.device_stats("hbm2")
        assert (hbm2_stats.hits, hbm2_stats.misses) == (0, 0)
        assert set(cache.per_device_stats()) == {"tiny", "ddr4-2400"}

    def test_clear_resets_per_device_stats(self):
        cache = CharacterizationCache()
        cache.get(DRAMArchitecture.DDR3, device=TINY_DEVICE)
        cache.clear()
        assert cache.per_device_stats() == {}
        assert len(cache) == 0

    def test_custom_organization_distinct_from_profile(self):
        cache = CharacterizationCache()
        base = cache.get(DRAMArchitecture.SALP_MASA, device=TINY_DEVICE)
        more = cache.get(
            DRAMArchitecture.SALP_MASA,
            TINY_DEVICE.organization.with_subarrays(2),
            device=TINY_DEVICE)
        assert base is not more
        assert len(cache) == 2

    def test_capability_enforced_before_compute(self):
        cache = CharacterizationCache()
        with pytest.raises(ConfigurationError, match="does not support"):
            cache.get(DRAMArchitecture.SALP_1, device=HBM2_DEVICE)
        assert len(cache) == 0


class TestCharacterizeDevice:
    def test_covers_the_capability_set(self):
        results = characterize_device(TINY_DEVICE)
        assert set(results) == set(ALL_ARCHITECTURES)
        commodity_only = characterize_device(LPDDR4_3200_DEVICE)
        assert set(commodity_only) == {DRAMArchitecture.DDR3}

    def test_fig1_shape_holds_on_every_device(self):
        """Hit < miss < conflict must hold per generation too."""
        for device in (default_device(), DDR4_2400_DEVICE,
                       LPDDR4_3200_DEVICE, HBM2_DEVICE):
            result = characterize_device(
                device, (DRAMArchitecture.DDR3,))[DRAMArchitecture.DDR3]
            hit = result.cost(AccessCondition.ROW_HIT).cycles
            miss = result.cost(AccessCondition.ROW_MISS).cycles
            conflict = result.cost(AccessCondition.ROW_CONFLICT).cycles
            assert hit < miss < conflict
