"""Tests for SALP-1 / SALP-2 / SALP-MASA controller behaviour."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.architecture import DRAMArchitecture
from repro.dram.commands import CommandKind, Request
from repro.dram.controller import MemoryController
from repro.dram.presets import DDR3_1600_2GB_X8 as ORG
from repro.dram.timing import DDR3_1600_TIMINGS as T


def controller(arch):
    return MemoryController(ORG, T, arch)


def read(bank=0, subarray=0, row=0, column=0):
    return Request.read(Coordinate(
        bank=bank, subarray=subarray, row=row, column=column))


def write(bank=0, subarray=0, row=0, column=0):
    return Request.write(Coordinate(
        bank=bank, subarray=subarray, row=row, column=column))


def subarray_switch_cycles(arch, kind=read):
    """Total cycles of a two-request different-subarray sequence."""
    trace = controller(arch).run(
        [kind(subarray=0), kind(subarray=1)])
    return trace.total_cycles


class TestSALP1:
    def test_act_overlaps_precharge(self):
        trace = controller(DRAMArchitecture.SALP_1).run(
            [read(subarray=0), read(subarray=1)])
        pre = next(c for c in trace.commands if c.kind is CommandKind.PRE)
        second_act = [c for c in trace.commands
                      if c.kind is CommandKind.ACT][1]
        # The second ACT does not wait for tRP.
        assert second_act.cycle < pre.cycle + T.tRP

    def test_faster_than_ddr3_on_subarray_switch(self):
        assert subarray_switch_cycles(DRAMArchitecture.SALP_1) \
            < subarray_switch_cycles(DRAMArchitecture.DDR3)

    def test_same_subarray_conflict_not_helped(self):
        ddr3 = controller(DRAMArchitecture.DDR3).run(
            [read(row=0), read(row=1)])
        salp1 = controller(DRAMArchitecture.SALP_1).run(
            [read(row=0), read(row=1)])
        assert salp1.total_cycles == ddr3.total_cycles


class TestSALP2:
    def test_write_recovery_overlapped(self):
        """SALP-2's gain over SALP-1 comes on write-then-switch."""
        salp1 = controller(DRAMArchitecture.SALP_1).run(
            [write(subarray=0), read(subarray=1)])
        salp2 = controller(DRAMArchitecture.SALP_2).run(
            [write(subarray=0), read(subarray=1)])
        assert salp2.total_cycles < salp1.total_cycles

    def test_read_switch_matches_salp1(self):
        assert subarray_switch_cycles(DRAMArchitecture.SALP_2) \
            == subarray_switch_cycles(DRAMArchitecture.SALP_1)

    def test_still_faster_than_ddr3(self):
        assert subarray_switch_cycles(DRAMArchitecture.SALP_2) \
            < subarray_switch_cycles(DRAMArchitecture.DDR3)


class TestMASA:
    def test_no_precharge_on_subarray_switch(self):
        trace = controller(DRAMArchitecture.SALP_MASA).run(
            [read(subarray=0), read(subarray=1)])
        assert trace.num_precharges == 0
        assert trace.num_activations == 2

    def test_revisit_is_a_hit(self):
        trace = controller(DRAMArchitecture.SALP_MASA).run([
            read(subarray=0), read(subarray=1),
            read(subarray=0, column=1),
        ])
        assert trace.row_hits == 1

    def test_ddr3_revisit_is_a_conflict(self):
        trace = controller(DRAMArchitecture.DDR3).run([
            read(subarray=0), read(subarray=1),
            read(subarray=0, column=1),
        ])
        assert trace.row_conflicts == 2

    def test_same_subarray_conflict_still_full_cost(self):
        masa = controller(DRAMArchitecture.SALP_MASA).run(
            [read(row=0), read(row=1)])
        ddr3 = controller(DRAMArchitecture.DDR3).run(
            [read(row=0), read(row=1)])
        assert masa.total_cycles == ddr3.total_cycles

    def test_activation_budget_evicts(self):
        organization = ORG
        budget = 2
        from repro.dram.architecture import ArchitectureBehavior
        ctrl = MemoryController(
            organization, T, DRAMArchitecture.SALP_MASA)
        ctrl.behavior = ArchitectureBehavior(
            overlap_precharge_with_activation=True,
            overlap_write_recovery=True,
            multiple_activated_subarrays=True,
            max_activated_subarrays=budget,
        )
        trace = ctrl.run([read(subarray=s) for s in range(4)])
        # Two of the four activations must have evicted a subarray.
        assert trace.num_precharges == 2

    def test_concurrent_subarrays_recorded_for_energy(self):
        trace = controller(DRAMArchitecture.SALP_MASA).run(
            [read(subarray=s) for s in range(4)])
        acts = [c for c in trace.commands if c.kind is CommandKind.ACT]
        assert [a.concurrent_subarrays for a in acts] == [0, 1, 2, 3]

    def test_subarray_sweep_much_faster_than_ddr3(self):
        stream = [read(subarray=i % 8, column=i // 8) for i in range(64)]
        masa = controller(DRAMArchitecture.SALP_MASA).run(stream)
        ddr3 = controller(DRAMArchitecture.DDR3).run(stream)
        assert masa.total_cycles < ddr3.total_cycles / 3


class TestArchitectureOrdering:
    """Section II-C: each SALP level is at least as fast as the last."""

    def test_subarray_switch_latency_ordering(self):
        ddr3 = subarray_switch_cycles(DRAMArchitecture.DDR3)
        salp1 = subarray_switch_cycles(DRAMArchitecture.SALP_1)
        salp2 = subarray_switch_cycles(DRAMArchitecture.SALP_2)
        masa = subarray_switch_cycles(DRAMArchitecture.SALP_MASA)
        assert ddr3 > salp1 >= salp2 >= masa

    def test_write_switch_latency_ordering(self):
        values = [
            controller(arch).run(
                [write(subarray=0), write(subarray=1)]).total_cycles
            for arch in (DRAMArchitecture.DDR3, DRAMArchitecture.SALP_1,
                         DRAMArchitecture.SALP_2,
                         DRAMArchitecture.SALP_MASA)
        ]
        assert values == sorted(values, reverse=True) or \
            all(a >= b for a, b in zip(values, values[1:]))

    @pytest.mark.parametrize("arch", [
        DRAMArchitecture.SALP_1, DRAMArchitecture.SALP_2,
        DRAMArchitecture.SALP_MASA])
    def test_hit_behaviour_unchanged(self, arch):
        """SALP only changes subarray interactions, not plain hits."""
        stream = [read(column=i) for i in range(8)]
        salp = controller(arch).run(stream)
        ddr3 = controller(DRAMArchitecture.DDR3).run(stream)
        assert salp.total_cycles == ddr3.total_cycles
