"""Validation of the closed-form analytical cost model.

Two properties make the model usable as the funnel strategy's pruning
phase:

1. **Per-condition accuracy** — on every shipped device preset and
   every architecture in its capability set, each of the five Fig.-1
   costs (cycles, read energy, write energy) matches the cycle-level
   simulator within a tight relative bound.
2. **Rank fidelity** — across a full (tiling x scheme x policy) design
   grid, the Spearman rank correlation between analytical EDP and
   exact EDP is >= 0.9 on every device preset, so pruning by
   analytical score keeps the true optimum in the retained top
   fraction.
"""

import math

import pytest

from repro.cnn.models import alexnet
from repro.cnn.scheduling import ALL_SCHEMES
from repro.cnn.tiling import enumerate_tilings
from repro.core.edp import layer_edp
from repro.dram.analytical import (
    AnalyticalModel,
    analytical_characterization,
    compare_to_simulator,
)
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import (
    ALL_CONDITIONS,
    characterize_analytical,
    characterize_cached,
)
from repro.dram.device import DEVICE_REGISTRY, default_device, get_device
from repro.dram.policies import controller_config
from repro.errors import ConfigurationError
from repro.mapping.catalog import TABLE1_MAPPINGS

#: Relative per-condition error bound under the default controller.
#: The formulas are exact on most presets; the loosest case measured
#: (MASA pacing on ddr4-2400) is ~1.3%.
DEFAULT_ERROR_BOUND = 0.03

#: Bound for the closed-row approximation (MASA subarray energy is the
#: one modelled-approximately case).
CLOSED_ROW_ERROR_BOUND = 0.12

ALL_CONFIGS = [
    (device, architecture)
    for device in DEVICE_REGISTRY
    for architecture in device.supported_architectures
]


def _spearman(first, second):
    """Spearman rank correlation with average ranks for ties."""

    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while j + 1 < len(order) \
                    and values[order[j + 1]] == values[order[i]]:
                j += 1
            average = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                out[order[k]] = average
            i = j + 1
        return out

    ra, rb = ranks(first), ranks(second)
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum((a - mean_a) * (b - mean_b) for a, b in zip(ra, rb))
    var_a = sum((a - mean_a) ** 2 for a in ra)
    var_b = sum((b - mean_b) ** 2 for b in rb)
    return cov / math.sqrt(var_a * var_b)


class TestConditionErrorBounds:
    """Per-condition accuracy vs the simulator."""

    @pytest.mark.parametrize(
        "device, architecture",
        ALL_CONFIGS,
        ids=[f"{d.name}-{a.value}" for d, a in ALL_CONFIGS])
    def test_default_controller_within_bound(self, device, architecture):
        report = compare_to_simulator(architecture, device=device)
        for condition in ALL_CONDITIONS:
            for field, error in report[condition].items():
                assert error <= DEFAULT_ERROR_BOUND, (
                    f"{device.name}/{architecture.value}/"
                    f"{condition.value}: {field} off by {error:.3f}")

    @pytest.mark.parametrize(
        "architecture", [DRAMArchitecture.DDR3,
                         DRAMArchitecture.SALP_MASA],
        ids=lambda a: a.value)
    def test_closed_row_within_bound(self, architecture):
        report = compare_to_simulator(
            architecture, device=default_device(),
            controller=controller_config(row_policy="closed"))
        for condition in ALL_CONDITIONS:
            for field, error in report[condition].items():
                assert error <= CLOSED_ROW_ERROR_BOUND, (
                    f"closed/{architecture.value}/{condition.value}: "
                    f"{field} off by {error:.3f}")

    def test_result_shape_matches_simulated(self):
        """The analytical result is a drop-in CharacterizationResult."""
        exact = characterize_cached(DRAMArchitecture.DDR3)
        model = characterize_analytical(DRAMArchitecture.DDR3)
        assert set(model.costs) == set(exact.costs)
        assert model.tck_ns == exact.tck_ns
        assert model.device_name == exact.device_name
        assert model.architecture is exact.architecture

    def test_memoized(self):
        first = analytical_characterization(DRAMArchitecture.SALP_1)
        second = analytical_characterization(DRAMArchitecture.SALP_1)
        assert first is second

    def test_capability_set_enforced(self):
        with pytest.raises(ConfigurationError, match="does not support"):
            AnalyticalModel(device=get_device("hbm2")).characterization(
                DRAMArchitecture.SALP_MASA)


class TestRankCorrelation:
    """Spearman >= 0.9 of analytical vs exact EDP, per device preset."""

    @pytest.mark.parametrize(
        "device", list(DEVICE_REGISTRY), ids=lambda d: d.name)
    def test_spearman_at_least_0_9(self, device):
        if device.name == "tiny":
            # AlexNet tiles overflow the miniature geometry; use the
            # matching miniature workload.
            from repro.cnn.models import tiny_test_network

            layer = tiny_test_network()[0]
        else:
            layer = alexnet()[1]  # CONV2: grouped, richly tiled
        exact_edps = []
        analytical_edps = []
        for architecture in device.supported_architectures:
            exact_char = characterize_cached(architecture, device=device)
            model_char = characterize_analytical(
                architecture, device=device)
            for scheme in ALL_SCHEMES:
                for policy in TABLE1_MAPPINGS:
                    for tiling in enumerate_tilings(layer):
                        exact_edps.append(layer_edp(
                            layer, tiling, scheme, policy, architecture,
                            characterization=exact_char,
                            device=device).edp_js)
                        analytical_edps.append(layer_edp(
                            layer, tiling, scheme, policy, architecture,
                            characterization=model_char,
                            device=device).edp_js)
        rho = _spearman(analytical_edps, exact_edps)
        assert rho >= 0.9, f"{device.name}: Spearman {rho:.4f} < 0.9"

    def test_analytical_argmin_matches_exact_on_paper_device(self):
        """The model's top pick is the simulator's top pick (DDR3)."""
        layer = alexnet()[1]
        architecture = DRAMArchitecture.DDR3
        exact_char = characterize_cached(architecture)
        model_char = characterize_analytical(architecture)

        def argmin(characterization):
            best = None
            for scheme in ALL_SCHEMES:
                for policy in TABLE1_MAPPINGS:
                    for tiling in enumerate_tilings(layer):
                        edp = layer_edp(
                            layer, tiling, scheme, policy, architecture,
                            characterization=characterization).edp_js
                        key = (policy.name, tiling, scheme)
                        if best is None or edp < best[0]:
                            best = (edp, key)
            return best[1]

        assert argmin(model_char) == argmin(exact_char)
