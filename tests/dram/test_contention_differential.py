"""Differential invariants for contended channels.

Each test pins a relationship between runs that share request streams:

* a contended run can never finish before the slowest of its
  per-requestor streams run alone — contention adds traffic, it never
  removes work (seeded corpus across all arbiters and architectures);
* under the FCFS controller the crossbar's merged order is
  architecture-independent, so the bare-controller SALP guarantees
  lift to contended runs: SALP-1/2 never trail commodity DDR3
  open-row beyond shared-command-bus serialization slack (one cycle
  per bus collision, bounded by the trace's command count — relaxing
  a bank-level wait can move a command onto a bus cycle another
  bank's command would have used), MASA stays within its
  subarray-select allowance, and
  neither ever loses row hits — subarray parallelism relieves
  contended bank conflicts at least as well as DDR3 open-row;
* enabling refresh on a contended run costs at most the
  tREFI/tRFC-derived allowance: every REF (one per elapsed tREFI)
  blocks the channel for tRFC and closes all rows, adding at most one
  extra row cycle per victim access.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.dram.address import Coordinate
from repro.dram.architecture import (
    ALL_ARCHITECTURES,
    DRAMArchitecture,
    behavior_of,
)
from repro.dram.commands import CommandKind, Request, RequestKind
from repro.dram.contention import (
    arbiter_names,
    contention_config,
    split_stream,
)
from repro.dram.controller import MemoryController
from repro.dram.crossbar import Crossbar
from repro.dram.presets import (
    DDR3_1600_2GB_X8,
    TINY_ORGANIZATION as ORG,
)
from repro.dram.timing import DDR3_1600_TIMINGS as T

architectures = st.sampled_from(ALL_ARCHITECTURES)
contention_configs = st.builds(
    contention_config,
    requestors=st.integers(2, 4),
    arbiter=st.sampled_from(list(arbiter_names())),
    assignment=st.sampled_from(["interleave", "block"]),
)

general_requests = st.builds(
    Request,
    kind=st.sampled_from([RequestKind.READ, RequestKind.WRITE]),
    coordinate=st.builds(
        Coordinate,
        bank=st.integers(0, ORG.banks_per_chip - 1),
        subarray=st.integers(0, ORG.subarrays_per_bank - 1),
        row=st.integers(0, 3),
        column=st.integers(0, ORG.bursts_per_row - 1),
    ),
)
general_streams = st.lists(general_requests, min_size=1, max_size=40)


# ----------------------------------------------------------------------
# Contended vs each stream alone
# ----------------------------------------------------------------------

def test_contended_run_never_beats_slowest_stream_alone():
    """Aggregate cycles under contention >= every per-requestor stream
    run alone on its own private channel, across a seeded corpus of
    streams x architectures x arbiters x assignments."""
    rng = random.Random(2026)
    checked = 0
    for _ in range(120):
        stream = [
            Request(
                rng.choice([RequestKind.READ, RequestKind.WRITE]),
                Coordinate(
                    bank=rng.randrange(ORG.banks_per_chip),
                    subarray=rng.randrange(ORG.subarrays_per_bank),
                    row=rng.randrange(4),
                    column=rng.randrange(ORG.bursts_per_row)))
            for _ in range(rng.randrange(4, 50))
        ]
        architecture = rng.choice(ALL_ARCHITECTURES)
        channel = contention_config(
            requestors=rng.choice([2, 3, 4]),
            arbiter=rng.choice(arbiter_names()),
            assignment=rng.choice(["interleave", "block"]))
        per_requestor = split_stream(stream, channel)
        alone = [
            MemoryController(ORG, T, architecture
                             ).run(s).total_cycles if s else 0
            for s in per_requestor
        ]
        contended = Crossbar(
            MemoryController(ORG, T, architecture), channel
        ).run(per_requestor).total_cycles
        assert contended >= max(alone), (
            f"contended run ({contended} cycles) beat a stream that "
            f"takes {max(alone)} cycles alone under {channel.label} "
            f"on {architecture.value}")
        checked += 1
    assert checked == 120


# ----------------------------------------------------------------------
# SALP under contention
# ----------------------------------------------------------------------

def _contended(stream, architecture, channel):
    return Crossbar(
        MemoryController(ORG, T, architecture), channel
    ).run_merged(stream)


@given(stream=general_streams, channel=contention_configs,
       architecture=st.sampled_from(
           [DRAMArchitecture.SALP_1, DRAMArchitecture.SALP_2]))
@settings(max_examples=100, deadline=None)
def test_salp12_never_slower_than_ddr3_under_contention(
        stream, channel, architecture):
    """The FCFS merge order is architecture-independent, so SALP-1/2's
    wait-only relaxations help a contended channel exactly as they
    help an uncontended one — up to shared-command-bus serialization
    slack: a command made eligible earlier can land on a bus cycle
    another bank's command would have used, slipping it by one cycle
    per collision, and the trace's command count bounds the number of
    collisions."""
    base = _contended(stream, DRAMArchitecture.DDR3, channel)
    salp = _contended(stream, architecture, channel)
    bus_slack = len(salp.commands)
    assert salp.total_cycles <= base.total_cycles + bus_slack


@given(stream=general_streams, channel=contention_configs)
@settings(max_examples=100, deadline=None)
def test_masa_bounded_by_ddr3_under_contention(stream, channel):
    base = _contended(stream, DRAMArchitecture.DDR3, channel)
    masa = _contended(stream, DRAMArchitecture.SALP_MASA, channel)
    select = behavior_of(
        DRAMArchitecture.SALP_MASA).subarray_select_cycles
    assert masa.total_cycles \
        <= base.total_cycles + select * len(stream)


@given(stream=general_streams, channel=contention_configs)
@settings(max_examples=100, deadline=None)
def test_masa_never_loses_row_hits_under_contention(stream, channel):
    """Subarray parallelism relieves contention-induced bank conflicts
    at least as well as DDR3 open-row does."""
    base = _contended(stream, DRAMArchitecture.DDR3, channel)
    masa = _contended(stream, DRAMArchitecture.SALP_MASA, channel)
    assert masa.row_hits >= base.row_hits
    assert masa.row_conflicts <= base.row_conflicts


# ----------------------------------------------------------------------
# Refresh under contention
# ----------------------------------------------------------------------

def _long_conflict_stream(count=400):
    """Slow enough to span several tREFI windows (Table-II geometry)."""
    return [
        Request.read(Coordinate(
            bank=0, subarray=0, row=i % 2, column=(i // 2) % 128))
        for i in range(count)
    ]


def test_contended_refresh_loss_within_trefi_trfc_bound():
    """Each REF blocks the channel for tRFC and closes every row, so
    the victim access pays at most one extra row cycle: the total
    refresh tax is bounded by refs * (tRFC + tRC)."""
    org = DDR3_1600_2GB_X8
    stream = _long_conflict_stream()
    for requestors in (2, 3):
        for arbiter in arbiter_names():
            channel = contention_config(
                requestors=requestors, arbiter=arbiter)
            with_refresh = Crossbar(
                MemoryController(org, T, refresh_enabled=True),
                channel).run_merged(stream)
            without = Crossbar(
                MemoryController(org, T), channel
            ).run_merged(stream)
            refs = sum(1 for c in with_refresh.commands
                       if c.kind is CommandKind.REF)
            # One REF per elapsed tREFI window (plus the in-flight one).
            assert refs <= with_refresh.total_cycles // T.tREFI + 1
            allowance = refs * (T.tRFC + T.tRC)
            assert with_refresh.total_cycles \
                <= without.total_cycles + allowance, (
                    f"{channel.label}: refresh tax exceeds the "
                    f"tREFI/tRFC bound")
