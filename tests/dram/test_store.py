"""Tests for the persistent on-disk characterization store."""

import dataclasses
import json
from importlib import import_module

import pytest

# ``repro.dram``'s __init__ rebinds the name ``characterize`` to the
# function, so the module object must be fetched explicitly.
characterize_module = import_module("repro.dram.characterize")
from repro.dram.architecture import DRAMArchitecture
from repro.dram.characterize import CharacterizationCache
from repro.dram.device import TINY_DEVICE
from repro.dram.policies import (
    DEFAULT_CONTROLLER_CONFIG,
    controller_config,
)
from repro.dram.store import (
    CACHE_DIR_ENV,
    CharacterizationStore,
    default_cache_dir,
    spec_hash,
)

DDR3 = DRAMArchitecture.DDR3
SALP1 = DRAMArchitecture.SALP_1


@pytest.fixture()
def store(tmp_path):
    return CharacterizationStore(tmp_path / "store")


@pytest.fixture()
def result():
    return CharacterizationCache().get(DDR3, device=TINY_DEVICE)


class TestRoundTrip:
    def test_save_then_load_is_equal(self, store, result):
        store.save(result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        loaded = store.load(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        assert loaded == result

    def test_float_precision_survives_json(self, store, result):
        store.save(result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        loaded = store.load(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        for condition, cost in result.costs.items():
            assert loaded.cost(condition).cycles == cost.cycles
            assert loaded.cost(condition).read_energy_nj \
                == cost.read_energy_nj

    def test_missing_entry_is_none(self, store):
        assert store.load(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG) is None
        assert store.misses == 1


class TestSpecHashInvalidation:
    def test_architecture_changes_the_key(self):
        base = spec_hash(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        assert base != spec_hash(
            TINY_DEVICE, SALP1, DEFAULT_CONTROLLER_CONFIG)

    def test_controller_changes_the_key(self):
        base = spec_hash(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        assert base != spec_hash(
            TINY_DEVICE, DDR3, controller_config(row_policy="closed"))

    def test_contention_changes_the_key(self):
        from repro.dram.contention import contention_config

        base = spec_hash(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        contended = spec_hash(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG,
            contention_config(requestors=2))
        assert base != contended
        # The explicit default contention config IS the bare key, so
        # pre-contention cache entries only orphan when N > 1.
        assert base == spec_hash(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG,
            contention_config(requestors=1))
        # Every knob that survives canonicalization is key material.
        assert contended != spec_hash(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG,
            contention_config(requestors=2, arbiter="age-based"))
        assert contended != spec_hash(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG,
            contention_config(requestors=2, assignment="block"))

    def test_any_timing_field_changes_the_key(self):
        base = spec_hash(TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        retimed = dataclasses.replace(
            TINY_DEVICE,
            timings=dataclasses.replace(
                TINY_DEVICE.timings, tRP=12, tRC=40))
        assert base != spec_hash(
            retimed, DDR3, DEFAULT_CONTROLLER_CONFIG)

    def test_stale_entry_not_served_after_spec_change(
            self, store, result):
        store.save(result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        retimed = dataclasses.replace(
            TINY_DEVICE,
            timings=dataclasses.replace(
                TINY_DEVICE.timings, tRCD=12, tRC=39))
        assert store.load(
            retimed, DDR3, DEFAULT_CONTROLLER_CONFIG) is None

    def test_corrupted_entry_is_a_miss(self, store, result):
        path = store.save(
            result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        path.write_text("{not json", encoding="utf-8")
        assert store.load(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG) is None

    def test_tampered_spec_is_a_miss(self, store, result):
        path = store.save(
            result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["spec"]["timings"]["tRP"] = 99
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.load(
            TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG) is None


class TestCacheIntegration:
    def test_warm_start_skips_simulation(
            self, store, monkeypatch):
        first = CharacterizationCache(store=store)
        original = first.get(DDR3, device=TINY_DEVICE)
        assert store.writes == 1

        # A fresh in-memory cache (a new process, in effect) must be
        # served from disk without ever touching the simulator.
        def boom(*args, **kwargs):
            raise AssertionError("simulated despite a disk hit")

        monkeypatch.setattr(characterize_module, "characterize", boom)
        second = CharacterizationCache(store=store)
        warm = second.get(DDR3, device=TINY_DEVICE)
        assert warm == original
        assert store.hits == 1

    def test_in_memory_hits_never_touch_disk(self, store):
        cache = CharacterizationCache(store=store)
        cache.get(DDR3, device=TINY_DEVICE)
        reads_before = store.hits + store.misses
        cache.get(DDR3, device=TINY_DEVICE)
        assert store.hits + store.misses == reads_before

    def test_attach_detach(self, store):
        cache = CharacterizationCache()
        cache.attach_store(store)
        cache.get(DDR3, device=TINY_DEVICE)
        assert store.writes == 1
        cache.attach_store(None)
        cache.get(SALP1, device=TINY_DEVICE)
        assert store.writes == 1

    def test_results_identical_with_and_without_store(self, store):
        plain = CharacterizationCache().get(DDR3, device=TINY_DEVICE)
        stored = CharacterizationCache(store=store).get(
            DDR3, device=TINY_DEVICE)
        reloaded = CharacterizationCache(store=store).get(
            DDR3, device=TINY_DEVICE)
        assert plain == stored == reloaded


class TestMaintenance:
    def test_stats_and_clear(self, store, result):
        store.save(result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG)
        store.save(result, TINY_DEVICE, SALP1, DEFAULT_CONTROLLER_CONFIG)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.writes == 2
        assert store.clear() == 2
        assert store.stats().entries == 0

    def test_default_root_honors_environment(self, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert CharacterizationStore().root == tmp_path / "elsewhere"

    def test_unwritable_root_degrades_gracefully(self, result):
        store = CharacterizationStore("/proc/definitely/not/writable")
        assert store.save(
            result, TINY_DEVICE, DDR3, DEFAULT_CONTROLLER_CONFIG) is None
        cache = CharacterizationCache(store=store)
        assert cache.get(DDR3, device=TINY_DEVICE) is not None
