"""Tests for repro.dram.commands."""

import pytest

from repro.dram.address import Coordinate
from repro.dram.commands import (
    Command,
    CommandKind,
    CommandTrace,
    Request,
    RequestKind,
    ServicedRequest,
)


ORIGIN = Coordinate()


class TestRequest:
    def test_read_constructor(self):
        request = Request.read(ORIGIN, tag="ifms")
        assert request.kind is RequestKind.READ
        assert request.tag == "ifms"

    def test_write_constructor(self):
        assert Request.write(ORIGIN).kind is RequestKind.WRITE

    def test_column_commands_flagged(self):
        assert CommandKind.RD.is_column
        assert CommandKind.WR.is_column
        assert not CommandKind.ACT.is_column
        assert not CommandKind.PRE.is_column


class TestServicedRequest:
    def test_exactly_one_outcome_required(self):
        with pytest.raises(ValueError):
            ServicedRequest(
                request=Request.read(ORIGIN), issue_cycle=0, data_cycle=10,
                row_hit=True, row_miss=True, row_conflict=False)

    def test_no_outcome_rejected(self):
        with pytest.raises(ValueError):
            ServicedRequest(
                request=Request.read(ORIGIN), issue_cycle=0, data_cycle=10,
                row_hit=False, row_miss=False, row_conflict=False)

    def test_valid_outcome(self):
        record = ServicedRequest(
            request=Request.read(ORIGIN), issue_cycle=0, data_cycle=10,
            row_hit=False, row_miss=True, row_conflict=False)
        assert record.row_miss


def _trace():
    commands = [
        Command(CommandKind.ACT, 0, ORIGIN),
        Command(CommandKind.RD, 11, ORIGIN),
        Command(CommandKind.RD, 15, ORIGIN.replace(column=1)),
        Command(CommandKind.PRE, 40, ORIGIN),
        Command(CommandKind.WR, 60, ORIGIN),
    ]
    serviced = [
        ServicedRequest(Request.read(ORIGIN), 0, 26,
                        row_hit=False, row_miss=True, row_conflict=False),
        ServicedRequest(Request.read(ORIGIN.replace(column=1)), 15, 30,
                        row_hit=True, row_miss=False, row_conflict=False),
        ServicedRequest(Request.write(ORIGIN), 60, 72,
                        row_hit=False, row_miss=False, row_conflict=True),
    ]
    return CommandTrace(commands=commands, serviced=serviced,
                        total_cycles=72)


class TestCommandTrace:
    def test_command_counters(self):
        trace = _trace()
        assert trace.num_activations == 1
        assert trace.num_precharges == 1
        assert trace.num_reads == 2
        assert trace.num_writes == 1

    def test_outcome_counters(self):
        trace = _trace()
        assert trace.row_hits == 1
        assert trace.row_misses == 1
        assert trace.row_conflicts == 1

    def test_counters_sum_to_serviced(self):
        trace = _trace()
        assert trace.row_hits + trace.row_misses + trace.row_conflicts \
            == len(trace.serviced)
