"""Tests for the Table-II DRAM presets."""

from repro.dram.architecture import DRAMArchitecture
from repro.dram.presets import (
    DDR3_1600_2GB_X8,
    SALP_2GB_X8,
    TINY_ORGANIZATION,
    organization_for,
)


class TestTable2Presets:
    def test_table2_channel_topology(self):
        assert DDR3_1600_2GB_X8.channels == 1
        assert DDR3_1600_2GB_X8.ranks_per_channel == 1
        assert DDR3_1600_2GB_X8.chips_per_rank == 1

    def test_table2_banks_and_subarrays(self):
        assert DDR3_1600_2GB_X8.banks_per_chip == 8
        assert DDR3_1600_2GB_X8.subarrays_per_bank == 8

    def test_salp_shares_geometry(self):
        assert SALP_2GB_X8 is DDR3_1600_2GB_X8

    def test_organization_for_every_architecture(self):
        for arch in DRAMArchitecture:
            assert organization_for(arch) is DDR3_1600_2GB_X8


class TestTinyOrganization:
    def test_smaller_than_table2(self):
        assert TINY_ORGANIZATION.total_bytes < DDR3_1600_2GB_X8.total_bytes

    def test_still_has_all_dimensions(self):
        assert TINY_ORGANIZATION.banks_per_chip > 1
        assert TINY_ORGANIZATION.subarrays_per_bank > 1
        assert TINY_ORGANIZATION.rows_per_subarray > 1
        assert TINY_ORGANIZATION.bursts_per_row > 1
