"""Tests for the Table-II DRAM presets."""

import pytest

from repro.dram.architecture import DRAMArchitecture
from repro.dram.device import LPDDR4_3200_DEVICE
from repro.dram.presets import (
    DDR3_1600_2GB_X8,
    TINY_ORGANIZATION,
    organization_for,
)
from repro.errors import ConfigurationError


class TestTable2Presets:
    def test_table2_channel_topology(self):
        assert DDR3_1600_2GB_X8.channels == 1
        assert DDR3_1600_2GB_X8.ranks_per_channel == 1
        assert DDR3_1600_2GB_X8.chips_per_rank == 1

    def test_table2_banks_and_subarrays(self):
        assert DDR3_1600_2GB_X8.banks_per_chip == 8
        assert DDR3_1600_2GB_X8.subarrays_per_bank == 8

    def test_organization_for_every_architecture(self):
        # SALP shares the DDR3 geometry (Table II lists identical
        # organization); only the behaviour flags differ.
        for arch in DRAMArchitecture:
            assert organization_for(arch) is DDR3_1600_2GB_X8

    def test_organization_for_resolves_device(self):
        organization = organization_for(
            DRAMArchitecture.DDR3, device=LPDDR4_3200_DEVICE)
        assert organization is LPDDR4_3200_DEVICE.organization

    def test_organization_for_enforces_capability(self):
        with pytest.raises(ConfigurationError, match="does not support"):
            organization_for(
                DRAMArchitecture.SALP_MASA, device=LPDDR4_3200_DEVICE)


class TestTinyOrganization:
    def test_smaller_than_table2(self):
        assert TINY_ORGANIZATION.total_bytes < DDR3_1600_2GB_X8.total_bytes

    def test_still_has_all_dimensions(self):
        assert TINY_ORGANIZATION.banks_per_chip > 1
        assert TINY_ORGANIZATION.subarrays_per_bank > 1
        assert TINY_ORGANIZATION.rows_per_subarray > 1
        assert TINY_ORGANIZATION.bursts_per_row > 1
