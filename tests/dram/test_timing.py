"""Tests for repro.dram.timing."""

import pytest

from repro.dram.timing import (
    DDR3_1066_TIMINGS,
    DDR3_1600_TIMINGS,
    TimingParameters,
)
from repro.errors import ConfigurationError


class TestDDR31600Defaults:
    def test_clock_period(self):
        assert DDR3_1600_TIMINGS.tck_ns == pytest.approx(1.25)

    def test_11_11_11_speed_grade(self):
        assert DDR3_1600_TIMINGS.tRCD == 11
        assert DDR3_1600_TIMINGS.tRP == 11
        assert DDR3_1600_TIMINGS.tCL == 11

    def test_trc_consistency(self):
        assert DDR3_1600_TIMINGS.tRC \
            == DDR3_1600_TIMINGS.tRAS + DDR3_1600_TIMINGS.tRP

    def test_derived_read_hit(self):
        assert DDR3_1600_TIMINGS.read_hit_cycles == 11 + 4

    def test_derived_read_miss(self):
        assert DDR3_1600_TIMINGS.read_miss_cycles == 11 + 11 + 4

    def test_derived_read_conflict(self):
        assert DDR3_1600_TIMINGS.read_conflict_cycles == 11 + 11 + 11 + 4

    def test_conflict_exceeds_miss_exceeds_hit(self):
        t = DDR3_1600_TIMINGS
        assert t.read_conflict_cycles > t.read_miss_cycles \
            > t.read_hit_cycles

    def test_cycles_to_ns(self):
        assert DDR3_1600_TIMINGS.cycles_to_ns(8) == pytest.approx(10.0)


class TestValidation:
    def test_trc_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(tRAS=28, tRP=11, tRC=38)

    def test_negative_cycle_count_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(tRCD=-1)

    def test_zero_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(tck_ns=0.0)

    def test_tfaw_below_trrd_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(tFAW=3, tRRD=5)

    def test_float_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(tCL=11.0)


class TestAlternateSpeedGrade:
    def test_ddr3_1066_is_valid(self):
        assert DDR3_1066_TIMINGS.tRC \
            == DDR3_1066_TIMINGS.tRAS + DDR3_1066_TIMINGS.tRP

    def test_slower_clock(self):
        assert DDR3_1066_TIMINGS.tck_ns > DDR3_1600_TIMINGS.tck_ns

    def test_absolute_trcd_similar(self):
        # Different speed grades target similar absolute latencies.
        fast_ns = DDR3_1600_TIMINGS.cycles_to_ns(DDR3_1600_TIMINGS.tRCD)
        slow_ns = DDR3_1066_TIMINGS.cycles_to_ns(DDR3_1066_TIMINGS.tRCD)
        assert fast_ns == pytest.approx(slow_ns, rel=0.15)
