"""Tests for repro.dram.bank state machines."""

import pytest

from repro.dram.bank import NEVER, BankState, RankState, SubarrayState
from repro.dram.timing import DDR3_1600_TIMINGS as T
from repro.errors import SchedulingError


class TestSubarrayState:
    def test_initially_closed(self):
        state = SubarrayState()
        assert not state.is_open

    def test_activate_opens_row(self):
        state = SubarrayState()
        state.activate(row=7, cycle=100)
        assert state.is_open and state.open_row == 7
        assert state.act_cycle == 100

    def test_double_activate_rejected(self):
        state = SubarrayState()
        state.activate(0, 0)
        with pytest.raises(SchedulingError):
            state.activate(1, 50)

    def test_precharge_without_open_row_rejected(self):
        with pytest.raises(SchedulingError):
            SubarrayState().precharge(0, T)

    def test_earliest_precharge_respects_tras(self):
        state = SubarrayState()
        state.activate(0, 100)
        assert state.earliest_precharge(T) == 100 + T.tRAS

    def test_earliest_precharge_respects_read_to_precharge(self):
        state = SubarrayState()
        state.activate(0, 0)
        state.last_read_issue = 40
        assert state.earliest_precharge(T) == max(T.tRAS, 40 + T.tRTP)

    def test_earliest_precharge_respects_write_recovery(self):
        state = SubarrayState()
        state.activate(0, 0)
        state.last_write_data_end = 50
        assert state.earliest_precharge(T) == 50 + T.tWR

    def test_write_recovery_can_be_overlapped(self):
        # SALP-2: tWR does not gate the PRE when switching subarrays,
        # but the PRE can never precede the write data itself.
        state = SubarrayState()
        state.activate(0, 0)
        state.last_write_data_end = 50
        relaxed = state.earliest_precharge(T, ignore_write_recovery=True)
        assert relaxed == 50
        assert relaxed < state.earliest_precharge(T)

    def test_precharge_closes_and_schedules_trp(self):
        state = SubarrayState()
        state.activate(3, 0)
        state.precharge(100, T)
        assert not state.is_open
        assert state.precharge_done == 100 + T.tRP
        assert state.act_cycle == NEVER


class TestBankState:
    def test_lazy_subarray_creation(self):
        bank = BankState(num_subarrays=4)
        assert bank.subarray(2) is bank.subarray(2)

    def test_subarray_out_of_range(self):
        bank = BankState(num_subarrays=4)
        with pytest.raises(SchedulingError):
            bank.subarray(4)

    def test_open_subarrays_lists_activated(self):
        bank = BankState(num_subarrays=4)
        bank.subarray(1).activate(5, 0)
        bank.subarray(3).activate(9, 10)
        assert sorted(bank.open_subarrays) == [1, 3]

    def test_the_open_subarray_single(self):
        bank = BankState(num_subarrays=4)
        assert bank.the_open_subarray() is None
        bank.subarray(2).activate(0, 0)
        assert bank.the_open_subarray() == 2

    def test_the_open_subarray_rejects_multiple(self):
        bank = BankState(num_subarrays=4)
        bank.subarray(0).activate(0, 0)
        bank.subarray(1).activate(0, 5)
        with pytest.raises(SchedulingError):
            bank.the_open_subarray()

    def test_lru_eviction_order(self):
        bank = BankState(num_subarrays=4)
        bank.subarray(0).activate(0, 0)
        bank.subarray(1).activate(0, 10)
        bank.subarray(0).last_use = 50  # bank 0 touched again
        assert bank.lru_open_subarray() == 1

    def test_lru_requires_open_subarray(self):
        with pytest.raises(SchedulingError):
            BankState(num_subarrays=4).lru_open_subarray()


class TestRankState:
    def test_trrd_spacing(self):
        rank = RankState()
        rank.record_activate(100)
        assert rank.earliest_activate(T) == 100 + T.tRRD

    def test_tfaw_window(self):
        rank = RankState()
        for cycle in (0, 5, 10, 15):
            rank.record_activate(cycle)
        # The fifth ACT must wait for the sliding four-ACT window.
        assert rank.earliest_activate(T) == max(15 + T.tRRD, 0 + T.tFAW)

    def test_act_history_bounded(self):
        rank = RankState()
        for cycle in range(0, 200, 10):
            rank.record_activate(cycle)
        assert len(rank.act_history) <= 8

    def test_read_after_write_turnaround(self):
        rank = RankState()
        rank.last_write_data_end = 200
        assert rank.earliest_read(T) == 200 + T.tWTR

    def test_write_after_read_turnaround(self):
        rank = RankState()
        rank.last_read_issue = 300
        assert rank.earliest_write(T) == 300 + T.tRTW

    def test_command_slot_skips_occupied(self):
        rank = RankState()
        rank.record_command(5)
        rank.record_command(6)
        assert rank.next_command_slot(5) == 7

    def test_double_booking_rejected(self):
        rank = RankState()
        rank.record_command(5)
        with pytest.raises(SchedulingError):
            rank.record_command(5)
